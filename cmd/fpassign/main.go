// Command fpassign runs the chip-package co-design flow on one instance:
// congestion-driven finger/pad assignment followed by the IR-drop- and
// bonding-aware exchange. It prints the before/after metrics and optionally
// writes routing and IR-map SVGs.
//
// Usage:
//
//	fpassign -circuit 2 -alg dfa -tiers 4 -seed 1 -svg routing.svg -irmap ir.svg
//	fpassign -fingers 256 -ballspace 1.2 -alg ifa -skip-exchange
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"copack"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain parses args on a private FlagSet and runs the flow; taking the
// argument slice (rather than the global flag state) keeps the whole CLI
// callable from tests, mirroring fpbench's structure.
func realMain(args []string) int {
	fs := flag.NewFlagSet("fpassign", flag.ContinueOnError)
	var (
		circuit      = fs.Int("circuit", 0, "Table 1 circuit number 1..5 (0 = use -fingers)")
		in           = fs.String("in", "", "load a design file instead of generating an instance")
		out          = fs.String("out", "", "write the planned design back to a design file")
		fingers      = fs.Int("fingers", 96, "finger/pad count for a custom instance")
		ballSpace    = fs.Float64("ballspace", 1.2, "bump ball spacing (µm) for a custom instance")
		alg          = fs.String("alg", "dfa", "assignment algorithm: dfa, ifa, random or mcmf")
		tiers        = fs.Int("tiers", 1, "stacking tier count ψ (1 = 2-D IC)")
		seed         = fs.Int64("seed", 1, "random seed")
		skipExchange = fs.Bool("skip-exchange", false, "stop after the congestion-driven step")
		improveVias  = fs.Bool("improve-vias", false, "run the iterative via improvement after planning")
		runDRC       = fs.Bool("drc", false, "run the design-rule check on the final plan")
		svgPath      = fs.String("svg", "", "write the routing plot to this SVG file")
		irPath       = fs.String("irmap", "", "write the IR-drop heat map to this SVG file")
		timeout      = fs.Duration("timeout", 0, "planning time budget (e.g. 30s); on expiry the best-so-far plan is reported (0 = none)")
		metricsPath  = fs.String("metrics", "", "write the run's telemetry snapshot (counters, gauges, phase timings) to this JSON file")
		portBudget   = fs.Int("portfolio", 0, "adaptive annealing portfolio: restart budget allocated across the default arm set by a deterministic bandit (0 = off, fixed single-schedule exchange)")
		portConfig   = fs.String("portfolio-config", "", "JSON portfolio declaration (arms/budget/explore); overrides -portfolio")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := config{
		circuit: *circuit, in: *in, out: *out, fingers: *fingers, ballSpace: *ballSpace,
		alg: *alg, tiers: *tiers, seed: *seed, skipExchange: *skipExchange,
		improveVias: *improveVias, runDRC: *runDRC, svgPath: *svgPath, irPath: *irPath,
		timeout: *timeout, metricsPath: *metricsPath,
		portBudget: *portBudget, portConfig: *portConfig,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fpassign:", err)
		return 1
	}
	return 0
}

type config struct {
	circuit         int
	in, out         string
	fingers         int
	ballSpace       float64
	alg             string
	tiers           int
	seed            int64
	skipExchange    bool
	improveVias     bool
	runDRC          bool
	svgPath, irPath string
	timeout         time.Duration
	metricsPath     string
	portBudget      int
	portConfig      string
}

func run(cfg config) error {
	circuit, fingers, ballSpace := cfg.circuit, cfg.fingers, cfg.ballSpace
	alg, tiers, seed := cfg.alg, cfg.tiers, cfg.seed
	skipExchange, svgPath, irPath := cfg.skipExchange, cfg.svgPath, cfg.irPath

	algorithm, err := copack.ParseAlgorithm(alg)
	if err != nil {
		return err
	}
	var p *copack.Problem
	tc := copack.TestCircuit{Name: "design"}
	if cfg.in != "" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		p, err = copack.ReadDesign(f)
		f.Close()
		if err != nil {
			return err
		}
		tc.Name = p.Circuit.Name
		tc.Fingers = p.Circuit.NumNets()
		tiers = p.Tiers
	} else {
		if circuit >= 1 && circuit <= 5 {
			tc = copack.Table1Circuits()[circuit-1]
		} else if circuit == 0 {
			tc = copack.TestCircuit{Name: "custom", Fingers: fingers,
				BallSpace: ballSpace, FingerW: 0.1, FingerH: 0.2, FingerSpace: 0.12}
		} else {
			return fmt.Errorf("circuit %d outside 1..5", circuit)
		}
		if p, err = copack.BuildCircuit(tc, copack.BuildOptions{Seed: seed, Tiers: tiers}); err != nil {
			return err
		}
	}
	planOpt := copack.Options{
		Algorithm:    algorithm,
		SkipExchange: skipExchange,
		Seed:         seed,
		Budget:       cfg.timeout,
	}
	if cfg.portConfig != "" {
		data, err := os.ReadFile(cfg.portConfig)
		if err != nil {
			return err
		}
		if planOpt.Portfolio, err = copack.ParsePortfolioConfig(data); err != nil {
			return err
		}
	} else if cfg.portBudget > 0 {
		planOpt.Portfolio = copack.DefaultPortfolio(cfg.portBudget)
	}
	var collector *copack.MetricsCollector
	if cfg.metricsPath != "" {
		// Only set Recorder when asked: a nil interface keeps the whole
		// pipeline on the no-op path.
		collector = copack.NewMetricsCollector()
		planOpt.Recorder = collector
	}
	res, err := copack.PlanContext(context.Background(), p, planOpt)
	if err != nil {
		return err
	}

	fmt.Printf("instance      : %s (%d fingers, ψ=%d, seed %d)\n", tc.Name, tc.Fingers, tiers, seed)
	fmt.Printf("algorithm     : %v\n", algorithm)
	if res.Partial {
		fmt.Printf("status        : PARTIAL — %s\n", res.Stopped)
	}
	fmt.Printf("max density   : %d", res.InitialStats.MaxDensity)
	if !skipExchange {
		fmt.Printf(" -> %d after exchange", res.FinalStats.MaxDensity)
	}
	fmt.Println()
	fmt.Printf("wirelength    : %.1f µm", res.InitialStats.Wirelength)
	if !skipExchange {
		fmt.Printf(" -> %.1f µm", res.FinalStats.Wirelength)
	}
	fmt.Println()
	fmt.Printf("max IR-drop   : %.2f mV", res.IRDropBefore*1000)
	if !skipExchange {
		imp := (res.IRDropBefore - res.IRDropAfter) / res.IRDropBefore * 100
		fmt.Printf(" -> %.2f mV (%.2f%% better)", res.IRDropAfter*1000, imp)
	}
	fmt.Println()
	if tiers > 1 {
		fmt.Printf("omega (bond)  : %d", res.OmegaBefore)
		if !skipExchange {
			fmt.Printf(" -> %d", res.OmegaAfter)
		}
		fmt.Println()
	}
	if res.Exchange != nil {
		fmt.Printf("anneal        : %d proposed, %d accepted, %d uphill\n",
			res.Exchange.Stats.Proposed, res.Exchange.Stats.Accepted, res.Exchange.Stats.Uphill)
		if out := res.Exchange.Portfolio; out != nil {
			winner := planOpt.Portfolio.Arms[out.BestArm]
			fmt.Printf("portfolio     : %d restarts over %d arms; winner %q (%d pulls), trace %#016x\n",
				out.Total, len(out.Arms), winner.Name, out.Arms[out.BestArm].Pulls, out.TraceHash())
		}
	}

	if cfg.improveVias {
		_, st, err := copack.ImproveVias(p, res.Assignment, 8)
		if err != nil {
			return err
		}
		fmt.Printf("via improve   : density %d -> %d\n", res.FinalStats.MaxDensity, st.MaxDensity)
	}
	if cfg.runDRC {
		rep, err := copack.CheckDesignRules(p, res.Assignment, copack.DRCRules{})
		if err != nil {
			return err
		}
		if rep.OK() {
			fmt.Printf("DRC           : clean (segment capacity %d wires)\n", rep.SegmentCapacity)
		} else {
			fmt.Printf("DRC           : %d violations (segment capacity %d)\n", len(rep.Violations), rep.SegmentCapacity)
			for i, v := range rep.Violations {
				if i == 8 {
					fmt.Printf("                … %d more\n", len(rep.Violations)-i)
					break
				}
				fmt.Printf("                %v\n", v)
			}
		}
	}
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		err = copack.WriteSolution(f, p, res.Assignment)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("design file   : %s (with planned order)\n", cfg.out)
	}

	if svgPath != "" {
		r, err := copack.RealizeRouting(p, res.Assignment)
		if err != nil {
			return err
		}
		if err := os.WriteFile(svgPath, copack.RoutingSVG(p, r, tc.Name), 0o644); err != nil {
			return err
		}
		fmt.Printf("routing plot  : %s\n", svgPath)
	}
	if irPath != "" {
		sol, err := copack.SolveIRDrop(p, res.Assignment, copack.DefaultChipGrid(p))
		if err != nil {
			return err
		}
		if err := os.WriteFile(irPath, copack.IRMapSVG(p, res.Assignment, sol, tc.Name), 0o644); err != nil {
			return err
		}
		fmt.Printf("IR heat map   : %s\n", irPath)
	}
	if collector != nil {
		snap := collector.Snapshot()
		data, err := snap.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.metricsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics       : %s (%d keys)\n", cfg.metricsPath, len(snap.Keys()))
	}
	return nil
}
