package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunGeneratedInstance(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		circuit: 1, alg: "dfa", tiers: 1, seed: 1, skipExchange: true,
		runDRC: true, improveVias: true,
		out:     filepath.Join(dir, "plan.copack"),
		svgPath: filepath.Join(dir, "r.svg"),
		irPath:  filepath.Join(dir, "ir.svg"),
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"plan.copack", "r.svg", "ir.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v (%d bytes)", f, err, len(data))
		}
	}
	// The emitted plan file must round-trip through -in.
	cfg2 := config{in: filepath.Join(dir, "plan.copack"), alg: "ifa", seed: 1, skipExchange: true}
	if err := run(cfg2); err != nil {
		t.Fatal(err)
	}
	plan, _ := os.ReadFile(filepath.Join(dir, "plan.copack"))
	if !strings.Contains(string(plan), "order bottom") {
		t.Error("plan file lacks the planned order")
	}
}

func TestRunMCMFInstance(t *testing.T) {
	// The flow-based engine plugs into the same -alg plumbing as the
	// heuristics; a full generated-instance run must plan and emit cleanly.
	dir := t.TempDir()
	cfg := config{
		circuit: 1, alg: "mcmf", tiers: 1, seed: 1, skipExchange: true,
		out: filepath.Join(dir, "plan.copack"),
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	plan, err := os.ReadFile(filepath.Join(dir, "plan.copack"))
	if err != nil || len(plan) == 0 {
		t.Fatalf("plan.copack: %v (%d bytes)", err, len(plan))
	}
	if !strings.Contains(string(plan), "order bottom") {
		t.Error("plan file lacks the planned order")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{circuit: 9, alg: "dfa"}); err == nil {
		t.Error("bad circuit number accepted")
	}
	if err := run(config{circuit: 1, alg: "banana"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run(config{in: "/nonexistent/file.copack", alg: "dfa"}); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run(config{circuit: 0, fingers: 3, alg: "dfa", tiers: 1}); err == nil {
		t.Error("impossible custom instance accepted")
	}
}

func TestRunTimeoutStillSucceeds(t *testing.T) {
	// A tiny -timeout must not turn into an error: the run reports the
	// best-so-far plan as PARTIAL and exits zero.
	cfg := config{circuit: 5, alg: "dfa", tiers: 1, seed: 1, timeout: 50 * time.Millisecond}
	start := time.Now()
	if err := run(cfg); err != nil {
		t.Fatalf("timed-out run became an error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run ignored the 50ms budget (%v)", elapsed)
	}
}

func TestRealMainFlags(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	// A full flag-driven run: -timeout keeps it bounded, -metrics writes
	// the telemetry snapshot, both via the FlagSet path.
	code := realMain([]string{
		"-circuit", "1", "-alg", "DFA", "-skip-exchange",
		"-timeout", "30s", "-metrics", metrics,
	})
	if code != 0 {
		t.Fatalf("realMain exit code %d", code)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("-metrics file: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Phases   []struct {
			Name string `json:"name"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics wrote invalid JSON: %v", err)
	}
	if len(snap.Phases) == 0 {
		t.Error("metrics snapshot has no phase events")
	}
}

func TestRealMainBadFlags(t *testing.T) {
	if code := realMain([]string{"-no-such-flag"}); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
	if code := realMain([]string{"-timeout", "banana"}); code != 2 {
		t.Errorf("bad -timeout value: exit code %d, want 2", code)
	}
	if code := realMain([]string{"-circuit", "9"}); code != 1 {
		t.Errorf("bad circuit: exit code %d, want 1", code)
	}
}

func TestRealMainUnwritableOutputs(t *testing.T) {
	// Every output flag must surface an unwritable path as exit code 1,
	// not a crash or silent success.
	outs := [][]string{
		{"-metrics", "/nonexistent-dir/metrics.json"},
		{"-out", "/nonexistent-dir/plan.copack"},
		{"-svg", "/nonexistent-dir/r.svg"},
		{"-irmap", "/nonexistent-dir/ir.svg"},
	}
	for _, extra := range outs {
		args := append([]string{"-circuit", "1", "-skip-exchange"}, extra...)
		if code := realMain(args); code != 1 {
			t.Errorf("%v: exit code %d, want 1", extra, code)
		}
	}
}

func TestRunPortfolio(t *testing.T) {
	// -portfolio N swaps the exchange's fixed restart loop for the default
	// adaptive arm set; the run must complete and print the winner arm.
	cfg := config{circuit: 1, alg: "dfa", tiers: 1, seed: 1, portBudget: 6}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunPortfolioConfigFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "port.json")
	if err := os.WriteFile(good, []byte(`{"arms":[{"name":"a"},{"name":"b","move_scale":0.5}],"budget":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{circuit: 1, alg: "dfa", tiers: 1, seed: 1, portConfig: good}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"arms":[{"name":"a"},{"name":"a"}],"budget":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{circuit: 1, alg: "dfa", tiers: 1, seed: 1, portConfig: bad}); err == nil {
		t.Error("duplicate-arm portfolio config accepted")
	}
	if err := run(config{circuit: 1, alg: "dfa", tiers: 1, seed: 1, portConfig: filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing portfolio config file accepted")
	}
}
