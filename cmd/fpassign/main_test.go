package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunGeneratedInstance(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		circuit: 1, alg: "dfa", tiers: 1, seed: 1, skipExchange: true,
		runDRC: true, improveVias: true,
		out:     filepath.Join(dir, "plan.copack"),
		svgPath: filepath.Join(dir, "r.svg"),
		irPath:  filepath.Join(dir, "ir.svg"),
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"plan.copack", "r.svg", "ir.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v (%d bytes)", f, err, len(data))
		}
	}
	// The emitted plan file must round-trip through -in.
	cfg2 := config{in: filepath.Join(dir, "plan.copack"), alg: "ifa", seed: 1, skipExchange: true}
	if err := run(cfg2); err != nil {
		t.Fatal(err)
	}
	plan, _ := os.ReadFile(filepath.Join(dir, "plan.copack"))
	if !strings.Contains(string(plan), "order bottom") {
		t.Error("plan file lacks the planned order")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{circuit: 9, alg: "dfa"}); err == nil {
		t.Error("bad circuit number accepted")
	}
	if err := run(config{circuit: 1, alg: "banana"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run(config{in: "/nonexistent/file.copack", alg: "dfa"}); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run(config{circuit: 0, fingers: 3, alg: "dfa", tiers: 1}); err == nil {
		t.Error("impossible custom instance accepted")
	}
}

func TestRunTimeoutStillSucceeds(t *testing.T) {
	// A tiny -timeout must not turn into an error: the run reports the
	// best-so-far plan as PARTIAL and exits zero.
	cfg := config{circuit: 5, alg: "dfa", tiers: 1, seed: 1, timeout: 50 * time.Millisecond}
	start := time.Now()
	if err := run(cfg); err != nil {
		t.Fatalf("timed-out run became an error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run ignored the 50ms budget (%v)", elapsed)
	}
}
