package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"copack/internal/anneal"
	"copack/internal/gen"
)

// shrinkBench makes runBench finish in test time: one worker count, a
// short pricing loop and a small portfolio budget. The code path is
// identical to the real bench.
func shrinkBench(t *testing.T) {
	t.Helper()
	oldW, oldM, oldP := benchWorkerCounts, benchPricingMoves, benchPortfolioBudget
	benchWorkerCounts = []int{1, 2}
	benchPricingMoves = 20_000
	benchPortfolioBudget = 5
	t.Cleanup(func() { benchWorkerCounts, benchPricingMoves, benchPortfolioBudget = oldW, oldM, oldP })
}

func TestBenchJSONSchemaRoundTrip(t *testing.T) {
	shrinkBench(t)
	dir := t.TempDir()
	var code int
	out := captureStdout(t, func() {
		code = realMain([]string{"-bench", "-json", "-benchtag", "unittest", "-out", dir})
	})
	if code != 0 {
		t.Fatalf("realMain(-bench -json) = %d, want 0", code)
	}
	if !strings.Contains(out, "Parallel speedup") {
		t.Errorf("bench output missing header:\n%s", out)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*-unittest.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one tagged BENCH json, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}

	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH json does not round-trip into benchReport: %v", err)
	}
	// 6 surfaces x len(workerCounts) + move-pricing + the two to-target
	// entries + the fixed/adaptive portfolio pair.
	wantEntries := 6*len(benchWorkerCounts) + 1 + 2 + 2
	if len(rep.Entries) != wantEntries {
		t.Errorf("%d entries, want %d", len(rep.Entries), wantEntries)
	}
	var pricing *benchEntry
	toTarget := map[string]*benchEntry{}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Seconds < 0 {
			t.Errorf("entry %s workers=%d has negative Seconds", e.Name, e.Workers)
		}
		if e.BytesPerOp <= 0 {
			t.Errorf("entry %s workers=%d: bytes_per_op = %v, want > 0", e.Name, e.Workers, e.BytesPerOp)
		}
		if e.Name == "exchange/move-pricing" {
			pricing = e
		}
		if strings.HasPrefix(e.Name, "exchange/to-target/") {
			toTarget[strings.TrimPrefix(e.Name, "exchange/to-target/")] = e
		}
	}
	for _, name := range []string{"dfa-cold", "mcmf-warm"} {
		e := toTarget[name]
		if e == nil {
			t.Errorf("missing exchange/to-target/%s entry", name)
			continue
		}
		if e.Moves <= 0 {
			t.Errorf("to-target/%s: moves = %v, want > 0", name, e.Moves)
		}
		if e.TargetCost == 0 {
			t.Errorf("to-target/%s: target_cost is unset", name)
		}
	}
	port := map[string]*benchEntry{}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if strings.HasPrefix(e.Name, "anneal/portfolio/") {
			port[strings.TrimPrefix(e.Name, "anneal/portfolio/")] = e
		}
	}
	for _, name := range []string{"fixed", "adaptive"} {
		e := port[name]
		if e == nil {
			t.Errorf("missing anneal/portfolio/%s entry", name)
			continue
		}
		if e.Moves <= 0 {
			t.Errorf("portfolio/%s: moves = %v, want > 0", name, e.Moves)
		}
		if e.TargetCost == 0 {
			t.Errorf("portfolio/%s: target_cost is unset", name)
		}
	}
	if f, a := port["fixed"], port["adaptive"]; f != nil && a != nil {
		// The acceptance gate, re-checked from the persisted file: the
		// portfolio's Eq 3 cost never exceeds the fixed baseline's, and the
		// baseline was granted at least the portfolio's move budget.
		if a.TargetCost > f.TargetCost {
			t.Errorf("portfolio adaptive cost %v > fixed cost %v", a.TargetCost, f.TargetCost)
		}
		if f.Moves < a.Moves {
			t.Errorf("fixed baseline ran %v moves, below the adaptive %v", f.Moves, a.Moves)
		}
	}
	if snap := rep.SolverInternals["anneal/portfolio"]; snap == nil {
		t.Error("solver_internals missing anneal/portfolio")
	} else if snap.Counters["portfolio/trace_hash"] == 0 {
		t.Error("portfolio internals missing the trace_hash counter")
	}
	// The alloc columns are part of the schema proper, not an omitempty
	// extra: every entry carries them even when zero.
	if n := bytes.Count(data, []byte(`"allocs_per_op"`)); n != len(rep.Entries) {
		t.Errorf("allocs_per_op appears %d times, want %d (one per entry)", n, len(rep.Entries))
	}
	if pricing == nil {
		t.Fatal("no exchange/move-pricing entry")
	}
	if pricing.AllocsPerMove == nil {
		t.Error("pricing entry omitted allocs_per_move; the 0-alloc invariant must be explicit")
	} else if *pricing.AllocsPerMove != 0 && !raceEnabled {
		// The race detector's instrumentation allocates, so the strict
		// zero only holds on uninstrumented builds (same carve-out as
		// TestPricedMoveZeroAllocs).
		t.Errorf("allocs_per_move = %v, want 0", *pricing.AllocsPerMove)
	}
	if pricing.NsPerMove <= 0 {
		t.Errorf("ns_per_move = %v, want > 0", pricing.NsPerMove)
	}

	// The workers=1 runs carry their telemetry into solver_internals.
	for _, name := range []string{"exchange/restarts4", "power/solve96x96"} {
		snap := rep.SolverInternals[name]
		if snap == nil {
			t.Errorf("solver_internals missing %q", name)
			continue
		}
		if len(snap.Keys()) == 0 {
			t.Errorf("solver_internals[%q] is empty", name)
		}
	}
	if snap := rep.SolverInternals["exchange/restarts4"]; snap != nil {
		if snap.Counters["exchange/restart0/moves_priced"] == 0 {
			t.Error("exchange internals missing per-restart move counters")
		}
	}
	if snap := rep.SolverInternals["power/solve96x96"]; snap != nil {
		if snap.Counters["iterations"] == 0 {
			t.Error("power internals missing iteration counter")
		}
	}

	// Re-marshaling the decoded report must reproduce the file byte for
	// byte: nothing in the schema is lossy.
	again, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), data) {
		t.Error("BENCH json is not a lossless round-trip through benchReport")
	}
}

// shrinkLargeTier swaps the large-tier knobs for versions that finish in
// test time: a 65×65 grid (still a full multigrid hierarchy, 65 = 2⁶+1), a
// few-hundred-finger circuit through the same generator geometry, and a
// short cooling schedule. The code path — solver selection, fingerprint
// comparison, JSON schema — is identical to the committed large bench.
func shrinkLargeTier(t *testing.T) {
	t.Helper()
	oldN, oldC, oldS := benchLargeGridN, benchLargeCircuit, benchLargeSchedule
	benchLargeGridN = 65
	benchLargeCircuit = func() gen.TestCircuit {
		c := gen.Large()
		c.Fingers = 512
		return c
	}
	benchLargeSchedule = anneal.Schedule{InitialTemp: 0.5, FinalTemp: 0.1, Cooling: 0.5, MovesPerTemp: 200}
	t.Cleanup(func() { benchLargeGridN, benchLargeCircuit, benchLargeSchedule = oldN, oldC, oldS })
}

// The large tier must produce the full surface set — CG, MG and MGCG on
// the same grid plus the large-N exchange — with the alloc columns filled
// and the same lossless round-trip as the default tier.
func TestBenchLargeTierSmoke(t *testing.T) {
	shrinkBench(t)
	shrinkLargeTier(t)
	dir := t.TempDir()
	var code int
	captureStdout(t, func() {
		code = realMain([]string{"-bench", "-json", "-size", "large", "-benchtag", "largesmoke", "-out", dir})
	})
	if code != 0 {
		t.Fatalf("realMain(-bench -size large) = %d, want 0", code)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*-largesmoke.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one tagged BENCH json, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("large BENCH json does not round-trip into benchReport: %v", err)
	}
	if rep.Size != "large" {
		t.Errorf("report size %q, want large", rep.Size)
	}
	// 6 default + 4 large surfaces per worker count, plus move-pricing, the
	// two to-target entries and the fixed/adaptive portfolio pair.
	wantEntries := 10*len(benchWorkerCounts) + 1 + 2 + 2
	if len(rep.Entries) != wantEntries {
		t.Errorf("%d entries, want %d", len(rep.Entries), wantEntries)
	}
	perSurface := map[string]int{}
	for _, e := range rep.Entries {
		perSurface[e.Name]++
	}
	for _, name := range []string{"power/cg512", "power/mg512", "power/mgcg512", "exchange/largeN"} {
		if perSurface[name] != len(benchWorkerCounts) {
			t.Errorf("surface %s has %d entries, want %d", name, perSurface[name], len(benchWorkerCounts))
		}
		if snap := rep.SolverInternals[name]; snap == nil || len(snap.Keys()) == 0 {
			t.Errorf("solver_internals missing %q", name)
		}
	}
	again, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), data) {
		t.Error("large BENCH json is not a lossless round-trip through benchReport")
	}
}

// An unknown tier is a usage error, not a silent fallback.
func TestBenchUnknownSize(t *testing.T) {
	shrinkBench(t)
	if got := realMain([]string{"-bench", "-size", "jumbo", "-out", t.TempDir()}); got != 1 {
		t.Errorf("realMain(-bench -size jumbo) = %d, want 1", got)
	}
}

func TestBenchUnwritableOut(t *testing.T) {
	shrinkBench(t)
	bad := filepath.Join(t.TempDir(), "no-such-dir")
	if got := realMain([]string{"-bench", "-json", "-out", bad}); got != 1 {
		t.Errorf("realMain(-bench -json -out <unwritable>) = %d, want 1", got)
	}
}
