package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shrinkBench makes runBench finish in test time: one worker count and a
// short pricing loop. The code path is identical to the real bench.
func shrinkBench(t *testing.T) {
	t.Helper()
	oldW, oldM := benchWorkerCounts, benchPricingMoves
	benchWorkerCounts = []int{1, 2}
	benchPricingMoves = 20_000
	t.Cleanup(func() { benchWorkerCounts, benchPricingMoves = oldW, oldM })
}

func TestBenchJSONSchemaRoundTrip(t *testing.T) {
	shrinkBench(t)
	dir := t.TempDir()
	var code int
	out := captureStdout(t, func() {
		code = realMain([]string{"-bench", "-json", "-benchtag", "unittest", "-out", dir})
	})
	if code != 0 {
		t.Fatalf("realMain(-bench -json) = %d, want 0", code)
	}
	if !strings.Contains(out, "Parallel speedup") {
		t.Errorf("bench output missing header:\n%s", out)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*-unittest.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one tagged BENCH json, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}

	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH json does not round-trip into benchReport: %v", err)
	}
	// 3 surfaces x len(workerCounts) + the move-pricing entry.
	wantEntries := 3*len(benchWorkerCounts) + 1
	if len(rep.Entries) != wantEntries {
		t.Errorf("%d entries, want %d", len(rep.Entries), wantEntries)
	}
	var pricing *benchEntry
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Seconds < 0 {
			t.Errorf("entry %s workers=%d has negative Seconds", e.Name, e.Workers)
		}
		if e.Name == "exchange/move-pricing" {
			pricing = e
		}
	}
	if pricing == nil {
		t.Fatal("no exchange/move-pricing entry")
	}
	if pricing.AllocsPerMove == nil {
		t.Error("pricing entry omitted allocs_per_move; the 0-alloc invariant must be explicit")
	} else if *pricing.AllocsPerMove != 0 && !raceEnabled {
		// The race detector's instrumentation allocates, so the strict
		// zero only holds on uninstrumented builds (same carve-out as
		// TestPricedMoveZeroAllocs).
		t.Errorf("allocs_per_move = %v, want 0", *pricing.AllocsPerMove)
	}
	if pricing.NsPerMove <= 0 {
		t.Errorf("ns_per_move = %v, want > 0", pricing.NsPerMove)
	}

	// The workers=1 runs carry their telemetry into solver_internals.
	for _, name := range []string{"exchange/restarts4", "power/solve96x96"} {
		snap := rep.SolverInternals[name]
		if snap == nil {
			t.Errorf("solver_internals missing %q", name)
			continue
		}
		if len(snap.Keys()) == 0 {
			t.Errorf("solver_internals[%q] is empty", name)
		}
	}
	if snap := rep.SolverInternals["exchange/restarts4"]; snap != nil {
		if snap.Counters["exchange/restart0/moves_priced"] == 0 {
			t.Error("exchange internals missing per-restart move counters")
		}
	}
	if snap := rep.SolverInternals["power/solve96x96"]; snap != nil {
		if snap.Counters["iterations"] == 0 {
			t.Error("power internals missing iteration counter")
		}
	}

	// Re-marshaling the decoded report must reproduce the file byte for
	// byte: nothing in the schema is lossy.
	again, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), data) {
		t.Error("BENCH json is not a lossless round-trip through benchReport")
	}
}

func TestBenchUnwritableOut(t *testing.T) {
	shrinkBench(t)
	bad := filepath.Join(t.TempDir(), "no-such-dir")
	if got := realMain([]string{"-bench", "-json", "-out", bad}); got != 1 {
		t.Errorf("realMain(-bench -json -out <unwritable>) = %d, want 1", got)
	}
}
