// Command fpbench regenerates the paper's tables and figures (see
// EXPERIMENTS.md for the paper-vs-measured record).
//
// Usage:
//
//	fpbench -table 2            # Table 2: density/wirelength comparison
//	fpbench -table 3            # Table 3: exchange results, ψ ∈ {1,4}
//	fpbench -fig 6 -out plots/  # Fig 6: IR maps (writes SVGs)
//	fpbench -all -out plots/
//	fpbench -sweep 20 -workers 4   # Table 2 over 20 seeds on 4 workers
//	fpbench -compare            # four-way engine table + warm-start comparison
//	fpbench -bench -json        # time the parallel surfaces, write BENCH_<date>.json
//	fpbench -table 3 -cpuprofile cpu.out -memprofile mem.out   # pprof evidence
//
// -workers bounds the pool used by tables, sweeps and -bench; every output
// is byte-identical for any value (see DESIGN.md's determinism notes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"copack/internal/exp"
)

// main defers to realMain so that deferred profile writers run before the
// process exits (os.Exit would skip them).
func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain parses args on a private FlagSet and runs the selected
// experiments; taking the argument slice (rather than reading os.Args via
// the global flag state) keeps the whole CLI callable from tests.
func realMain(args []string) int {
	fs := flag.NewFlagSet("fpbench", flag.ContinueOnError)
	var (
		table     = fs.Int("table", 0, "regenerate a table (1, 2 or 3)")
		fig       = fs.Int("fig", 0, "regenerate a figure (5, 6, 13 or 15)")
		all       = fs.Bool("all", false, "regenerate everything")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", ".", "directory for SVG artifacts")
		quick     = fs.Bool("quick", false, "faster, lower-fidelity Fig 6")
		sweep     = fs.Int("sweep", 0, "re-run Table 2 over this many seeds and report ratio distributions")
		sweep3    = fs.Int("sweep3", 0, "re-run Table 3 over this many seeds and report improvement distributions")
		flipchip  = fs.Bool("flipchip", false, "compare wire-bond vs flip-chip IR-drop (the paper's §2.4 motivation)")
		compare   = fs.Bool("compare", false, "compare the four assignment engines (Table 2 + MCMF) and cold vs MCMF-warm-started exchange")
		workers   = fs.Int("workers", runtime.NumCPU(), "worker pool size for tables, sweeps and -bench (results are identical for any value)")
		bench     = fs.Bool("bench", false, "time the parallel surfaces at 1/2/4/8 workers")
		jsonOut   = fs.Bool("json", false, "with -bench: also write BENCH_<date>.json to -out")
		benchTag  = fs.String("benchtag", "", "with -bench -json: suffix the output file BENCH_<date>-<tag>.json")
		benchSize = fs.String("size", "default", "with -bench: surface tier (default, or large for the 100k-net/513-grid scaling tier)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fpbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fpbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fpbench: -memprofile: %v\n", err)
			}
		}()
	}

	// harness fans experiment work units out over -workers and reports
	// per-unit progress on stderr; the results are byte-identical to the
	// sequential run for any worker count.
	harness := exp.Harness{
		Workers:  *workers,
		Progress: func(line string) { fmt.Fprintf(os.Stderr, "fpbench: %s\n", line) },
	}

	failed := false
	run := func(name string, fn func() error) {
		if failed {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fpbench: %s: %v\n", name, err)
			failed = true
		}
	}
	any := false
	if *all || *table == 1 {
		any = true
		run("table1", func() error {
			fmt.Println("== Table 1: test circuits ==")
			fmt.Println(exp.Table1Text())
			return nil
		})
	}
	if *all || *table == 2 {
		any = true
		run("table2", func() error {
			res, err := exp.Table2With(*seed, 10, harness)
			if err != nil {
				return err
			}
			fmt.Println("== Table 2: max density and wirelength (paper avg ratios: 0.63/0.36 density, 0.88/0.82 WL) ==")
			fmt.Println(res.Format())
			return nil
		})
	}
	if *all || *table == 3 {
		any = true
		run("table3", func() error {
			res, err := exp.Table3With(*seed, harness)
			if err != nil {
				return err
			}
			fmt.Println("== Table 3: finger/pad exchange (paper: IR 10.61% @ψ=1, 4.58% @ψ=4, bonding 15.66%) ==")
			fmt.Println(res.Format())
			return nil
		})
	}
	if *all || *fig == 5 {
		any = true
		run("fig5", func() error {
			f, err := exp.Fig5()
			if err != nil {
				return err
			}
			fmt.Println("== Fig 5/10/12: worked example ==")
			fmt.Println(f.Format())
			return nil
		})
	}
	if *all || *fig == 13 {
		any = true
		run("fig13", func() error {
			f, err := exp.Fig13()
			if err != nil {
				return err
			}
			fmt.Println("== Fig 13: 20-net example ==")
			fmt.Println(f.Format())
			return nil
		})
	}
	if *all || *fig == 6 {
		any = true
		run("fig6", func() error {
			res, err := exp.Fig6(*seed, *quick)
			if err != nil {
				return err
			}
			fmt.Println("== Fig 6: IR-drop of the 138-pad chip (paper: 117.4 / 77.3 / 55.2 mV) ==")
			for _, name := range []string{"random", "regular", "proposed"} {
				fmt.Printf("%-9s: %.1f mV\n", name, res.Drop[name]*1000)
				path := filepath.Join(*out, "fig6_"+name+".svg")
				if err := os.WriteFile(path, res.SVG[name], 0o644); err != nil {
					return err
				}
				fmt.Printf("           wrote %s\n", path)
			}
			return nil
		})
	}
	if *all || *fig == 15 {
		any = true
		run("fig15", func() error {
			res, err := exp.Fig15(*seed)
			if err != nil {
				return err
			}
			fmt.Println("== Fig 15: circuit 2 routing plots ==")
			for _, name := range []string{"random", "ifa", "dfa"} {
				fmt.Printf("%-7s: density %d, wirelength %.1f µm\n", name, res.Density[name], res.Wirelen[name])
				path := filepath.Join(*out, "fig15_"+name+".svg")
				if err := os.WriteFile(path, res.SVG[name], 0o644); err != nil {
					return err
				}
				fmt.Printf("         wrote %s\n", path)
			}
			return nil
		})
	}
	if *sweep > 0 {
		any = true
		run("sweep", func() error {
			res, err := exp.SweepTable2With(exp.Seeds(*sweep), 10, harness)
			if err != nil {
				return err
			}
			fmt.Println("== Table 2 seed sweep ==")
			fmt.Println(res.Format())
			return nil
		})
	}
	if *sweep3 > 0 {
		any = true
		run("sweep3", func() error {
			res, err := exp.SweepTable3With(exp.Seeds(*sweep3), harness)
			if err != nil {
				return err
			}
			fmt.Println("== Table 3 seed sweep ==")
			fmt.Println(res.Format())
			return nil
		})
	}
	if *all || *flipchip {
		any = true
		run("flipchip", func() error {
			res, err := exp.FlipChip(nil)
			if err != nil {
				return err
			}
			fmt.Println("== Wire-bond vs flip-chip IR-drop (paper §2.4) ==")
			fmt.Println(res.Format())
			return nil
		})
	}
	if *all || *compare {
		any = true
		run("compare", func() error {
			res, err := exp.CompareAssignWith(*seed, 10, harness)
			if err != nil {
				return err
			}
			fmt.Println("== Assignment engines: random / IFA / DFA / MCMF ==")
			fmt.Println(res.Format())
			ws, err := exp.WarmStartWith(*seed, harness)
			if err != nil {
				return err
			}
			fmt.Println("== Exchange warm start: cold (DFA) vs MCMF-seeded, shared Eq 3 baseline ==")
			fmt.Println(ws.Format())
			return nil
		})
	}
	if *bench {
		any = true
		run("bench", func() error { return runBench(*out, *jsonOut, *benchTag, *benchSize) })
	}
	if !any {
		fs.Usage()
		return 2
	}
	if failed {
		return 1
	}
	return 0
}
