package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"copack/internal/assign"
	"copack/internal/exchange"
	"copack/internal/exp"
	"copack/internal/gen"
	"copack/internal/obs"
	"copack/internal/power"
)

// Bench sizing knobs. Package variables rather than constants so the tests
// can shrink the run to seconds while exercising the full code path.
var (
	benchWorkerCounts = []int{1, 2, 4, 8}
	benchPricingMoves = 2_000_000
)

// benchEntry is one timed (surface, workers) measurement. NsPerMove and
// AllocsPerMove are only set for the exchange/move-pricing entry, which
// measures the annealer's hot loop rather than a parallel surface.
type benchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	NsPerMove  float64 `json:"ns_per_move,omitempty"`
	// AllocsPerMove is a pointer so the pricing entry records an explicit
	// 0 (the invariant under test) while the surface entries omit it.
	AllocsPerMove *float64 `json:"allocs_per_move,omitempty"`
}

// benchReport is the BENCH_<date>.json schema. CPUs and GoMaxProcs are
// recorded because the speedups are only meaningful relative to them.
type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	CPUs       int          `json:"cpus"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Entries    []benchEntry `json:"entries"`
	// SolverInternals holds the obs telemetry snapshot of each surface's
	// workers=1 run (solver iterations, residuals, per-restart anneal
	// counters, ...), keyed by surface name. Only surfaces that accept a
	// Recorder appear. The snapshots are deterministic, so two runs of the
	// same binary produce identical SolverInternals even though the timing
	// entries differ.
	SolverInternals map[string]*obs.Snapshot `json:"solver_internals,omitempty"`
}

// runBench times the three parallelized surfaces — multi-start exchange,
// large-grid IR solve and the Table 2 harness — at 1, 2, 4 and 8 workers,
// plus the annealer's per-move pricing rate. Every variant computes
// identical results; only wall clock varies. With jsonOut it writes
// BENCH_<date>.json into outDir (BENCH_<date>-<tag>.json with a non-empty
// tag, so a rerun can sit beside a same-day baseline).
func runBench(outDir string, jsonOut bool, tag string) error {
	rep := &benchReport{
		Date:            time.Now().Format("2006-01-02"),
		GoVersion:       runtime.Version(),
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		SolverInternals: map[string]*obs.Snapshot{},
	}
	workerCounts := benchWorkerCounts

	p := gen.MustBuild(gen.Table1()[2], gen.Options{Seed: 1, Tiers: 4})
	dfaA, err := assign.DFA(p, assign.DFAOptions{})
	if err != nil {
		return err
	}
	g := power.GridSpec{
		Nx: 96, Ny: 96, Width: 100, Height: 100,
		RsX: 0.05, RsY: 0.05, Vdd: 1.0, CurrentDensity: 1e-5,
	}
	var pads []power.Pad
	for i := 0; i < g.Nx; i += 7 {
		pads = append(pads, power.Pad{I: i, J: 0}, power.Pad{I: i, J: g.Ny - 1})
	}

	// Each surface optionally takes a Recorder; runBench attaches one on
	// the workers=1 pass and merges the snapshot into the report. rec is
	// nil on the other passes, which the obs layer treats as "off".
	surfaces := []struct {
		name string
		run  func(workers int, rec obs.Recorder) error
	}{
		{"exchange/restarts4", func(w int, rec obs.Recorder) error {
			_, err := exchange.Run(p, dfaA, exchange.Options{Seed: 1, Restarts: 4, Workers: w, Recorder: rec})
			return err
		}},
		{"power/solve96x96", func(w int, rec obs.Recorder) error {
			_, err := power.Solve(g, pads, power.SolveOptions{Workers: w, Recorder: rec})
			return err
		}},
		{"exp/table2", func(w int, rec obs.Recorder) error {
			_, err := exp.Table2With(1, 10, exp.Harness{Workers: w})
			return err
		}},
	}

	fmt.Printf("== Parallel speedup (%d CPUs, GOMAXPROCS=%d, %s) ==\n",
		rep.CPUs, rep.GoMaxProcs, rep.GoVersion)
	for _, s := range surfaces {
		var base float64
		for _, w := range workerCounts {
			var col *obs.Collector
			var rec obs.Recorder
			if w == 1 {
				col = obs.NewCollector()
				rec = col
			}
			start := time.Now()
			if err := s.run(w, rec); err != nil {
				return fmt.Errorf("%s workers=%d: %v", s.name, w, err)
			}
			secs := time.Since(start).Seconds()
			if w == 1 {
				base = secs
				if snap := col.Snapshot(); len(snap.Keys()) > 0 {
					rep.SolverInternals[s.name] = &snap
				}
			}
			e := benchEntry{Name: s.name, Workers: w, Seconds: secs}
			if base > 0 {
				e.SpeedupVs1 = base / secs
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-20s workers=%d: %8.3fs  (%.2fx vs 1)\n", s.name, w, e.Seconds, e.SpeedupVs1)
		}
	}

	// Hot-loop rate: how fast the annealer can price adjacent swaps, and
	// that doing so allocates nothing.
	pricingMoves := benchPricingMoves
	start := time.Now()
	ps, err := exchange.PricingBench(p, dfaA, exchange.Options{Seed: 1}, pricingMoves)
	if err != nil {
		return fmt.Errorf("move-pricing: %v", err)
	}
	rep.Entries = append(rep.Entries, benchEntry{
		Name: "exchange/move-pricing", Workers: 1,
		Seconds: time.Since(start).Seconds(), SpeedupVs1: 1,
		NsPerMove: ps.NsPerMove, AllocsPerMove: &ps.AllocsPerMove,
	})
	fmt.Printf("%-20s %.1f ns/move, %.3f allocs/move (%d moves)\n",
		"exchange/move-pricing", ps.NsPerMove, ps.AllocsPerMove, pricingMoves)

	if jsonOut {
		name := "BENCH_" + rep.Date
		if tag != "" {
			name += "-" + tag
		}
		path := filepath.Join(outDir, name+".json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
