package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"copack/internal/anneal"
	"copack/internal/assign"
	"copack/internal/bga"
	"copack/internal/core"
	"copack/internal/exchange"
	"copack/internal/exp"
	"copack/internal/gen"
	"copack/internal/obs"
	"copack/internal/parallel"
	"copack/internal/portfolio"
	"copack/internal/power"
)

// Bench sizing knobs. Package variables rather than constants so the tests
// can shrink the run to seconds while exercising the full code path.
var (
	benchWorkerCounts = []int{1, 2, 4, 8}
	benchPricingMoves = 2_000_000
	// Large-tier knobs: the IR grid edge (odd, so the multigrid hierarchy
	// is deep), the circuit generator and the annealing schedule. The CI
	// smoke shrinks all three; the committed BENCH uses the defaults.
	benchLargeGridN    = 513
	benchLargeCircuit  = gen.Large
	benchLargeSchedule = anneal.Schedule{InitialTemp: 0.5, FinalTemp: 1e-2, Cooling: 0.8, MovesPerTemp: 50_000}
	// benchMCMFReps repeats the flow solves so the assign/mcmf surface's
	// wall clock is measurable (one solve is microseconds).
	benchMCMFReps = 200
	// benchPortfolioBudget is the restart budget for the anneal/portfolio
	// surface and the fixed-vs-adaptive comparison entries.
	benchPortfolioBudget = 8
)

// benchEntry is one timed (surface, workers) measurement. NsPerMove and
// AllocsPerMove are only set for the exchange/move-pricing entry, which
// measures the annealer's hot loop rather than a parallel surface.
// AllocsPerOp and BytesPerOp are heap-counter deltas over the single timed
// run of the entry (runtime.MemStats Mallocs/TotalAlloc), recorded for
// every entry so the allocation-discipline work is pinned in the
// trajectory files.
type benchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	NsPerMove  float64 `json:"ns_per_move,omitempty"`
	// AllocsPerMove is a pointer so the pricing entry records an explicit
	// 0 (the invariant under test) while the surface entries omit it.
	AllocsPerMove *float64 `json:"allocs_per_move,omitempty"`
	AllocsPerOp   float64  `json:"allocs_per_op"`
	BytesPerOp    float64  `json:"bytes_per_op"`
	// Moves and TargetCost are only set for the exchange/to-target
	// entries: the anneal moves proposed before reaching TargetCost (the
	// cold DFA-seeded run's final Eq 3 cost against the shared baseline).
	Moves      float64 `json:"moves,omitempty"`
	TargetCost float64 `json:"target_cost,omitempty"`
}

// benchReport is the BENCH_<date>.json schema. CPUs and GoMaxProcs are
// recorded because the speedups are only meaningful relative to them.
type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	CPUs       int          `json:"cpus"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Size       string       `json:"size,omitempty"`
	Entries    []benchEntry `json:"entries"`
	// SolverInternals holds the obs telemetry snapshot of each surface's
	// workers=1 run (solver iterations, residuals, per-restart anneal
	// counters, ...), keyed by surface name. Only surfaces that accept a
	// Recorder appear. The snapshots are deterministic, so two runs of the
	// same binary produce identical SolverInternals even though the timing
	// entries differ.
	SolverInternals map[string]*obs.Snapshot `json:"solver_internals,omitempty"`
}

// benchSurface is one parallel surface: run executes it at a worker count
// and returns a determinism fingerprint of its output. runBench requires
// the fingerprint of every workers>1 pass to equal the workers=1 one — the
// bench doubles as the cross-worker byte-identity gate, so a determinism
// regression cannot produce a BENCH file at all.
type benchSurface struct {
	name string
	run  func(workers int, rec obs.Recorder) (string, error)
}

// fingerprintAssignment hashes a full slot assignment.
func fingerprintAssignment(a *core.Assignment) string {
	h := fnv.New64a()
	for _, side := range bga.Sides() {
		for _, id := range a.Slots[side] {
			fmt.Fprintf(h, "%d,", id)
		}
		fmt.Fprint(h, ";")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintFloats hashes a float64 field bit for bit.
func fingerprintFloats(vs []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vs {
		bits := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			buf[k] = byte(bits >> (8 * k))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// defaultSurfaces are the paper-scale parallel surfaces benched since the
// first BENCH file: multi-start exchange, the 96×96 IR solve and the
// Table 2 harness.
func defaultSurfaces() ([]benchSurface, error) {
	p := gen.MustBuild(gen.Table1()[2], gen.Options{Seed: 1, Tiers: 4})
	dfaA, err := assign.DFA(p, assign.DFAOptions{})
	if err != nil {
		return nil, err
	}
	g := power.GridSpec{
		Nx: 96, Ny: 96, Width: 100, Height: 100,
		RsX: 0.05, RsY: 0.05, Vdd: 1.0, CurrentDensity: 1e-5,
	}
	var pads []power.Pad
	for i := 0; i < g.Nx; i += 7 {
		pads = append(pads, power.Pad{I: i, J: 0}, power.Pad{I: i, J: g.Ny - 1})
	}
	return []benchSurface{
		{"exchange/restarts4", func(w int, rec obs.Recorder) (string, error) {
			res, err := exchange.Run(p, dfaA, exchange.Options{Seed: 1, Restarts: 4, Workers: w, Recorder: rec})
			if err != nil {
				return "", err
			}
			return fingerprintAssignment(res.Assignment), nil
		}},
		{"power/solve96x96", func(w int, rec obs.Recorder) (string, error) {
			s, err := power.Solve(g, pads, power.SolveOptions{Workers: w, Recorder: rec})
			if err != nil {
				return "", err
			}
			return fingerprintFloats(s.V), nil
		}},
		{"exp/table2", func(w int, rec obs.Recorder) (string, error) {
			res, err := exp.Table2With(1, 10, exp.Harness{Workers: w})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"assign/mcmf", func(w int, rec obs.Recorder) (string, error) {
			// Fan the flow solves over the worker pool: each unit is one
			// (circuit, rep); fingerprints are reduced in index order, so
			// the surface doubles as the MCMF cross-worker identity gate.
			circuits := gen.Table1()
			fps := make([]string, len(circuits))
			err := parallel.ForEachErr(context.Background(), len(circuits), w, func(_ context.Context, i int) error {
				p := gen.MustBuild(circuits[i], gen.Options{Seed: 1})
				var fp string
				for r := 0; r < benchMCMFReps; r++ {
					a, err := assign.MCMF(p, assign.MCMFOptions{})
					if err != nil {
						return err
					}
					next := fingerprintAssignment(a)
					if fp != "" && next != fp {
						return fmt.Errorf("assign/mcmf: %s rep %d fingerprint drifted", circuits[i].Name, r)
					}
					fp = next
				}
				fps[i] = fp
				return nil
			})
			if err != nil {
				return "", err
			}
			return strings.Join(fps, "|"), nil
		}},
		{"exchange/warmstart", func(w int, rec obs.Recorder) (string, error) {
			mcmfA, err := assign.MCMF(p, assign.MCMFOptions{})
			if err != nil {
				return "", err
			}
			res, err := exchange.Run(p, dfaA, exchange.Options{
				Seed: 1, Restarts: 4, Workers: w, Recorder: rec,
				Initial: func(int) *core.Assignment { return mcmfA },
			})
			if err != nil {
				return "", err
			}
			return fingerprintAssignment(res.Assignment), nil
		}},
		{"anneal/portfolio", func(w int, rec obs.Recorder) (string, error) {
			// The adaptive bandit over the default arm set. The fingerprint
			// concatenates the winning order with the arm-allocation trace
			// hash, so a scheduling-dependent bandit decision — not just a
			// different final assignment — trips the identity gate.
			res, err := exchange.Run(p, dfaA, exchange.Options{
				Seed: 1, Workers: w, Recorder: rec,
				Portfolio: portfolio.Default(benchPortfolioBudget),
			})
			if err != nil {
				return "", err
			}
			return fingerprintAssignment(res.Assignment) +
				"/" + fmt.Sprintf("%016x", res.Portfolio.TraceHash()), nil
		}},
	}, nil
}

// largeSurfaces is the 100k+-net scaling tier: the 513×513 IR grid solved
// by CG, multigrid and multigrid-preconditioned CG at the same tolerance
// (the mg-vs-cg wall-clock ratio is the tier's headline number), and the
// annealer on the gen.Large circuit. Entry names carry the nominal "512"
// tier label; the actual grid is 2⁹+1 per side, the vertex-centered size
// the multigrid hierarchy coarsens all the way down.
func largeSurfaces() ([]benchSurface, error) {
	p := gen.MustBuild(benchLargeCircuit(), gen.Options{Seed: 1})
	dfaA, err := assign.DFA(p, assign.DFAOptions{})
	if err != nil {
		return nil, err
	}
	n := benchLargeGridN
	g := power.GridSpec{
		Nx: n, Ny: n, Width: 1000, Height: 1000,
		RsX: 0.05, RsY: 0.05, Vdd: 1.0, CurrentDensity: 1e-5,
	}
	var pads []power.Pad
	for i := 0; i < n; i += 8 {
		pads = append(pads,
			power.Pad{I: i, J: 0}, power.Pad{I: i, J: n - 1},
			power.Pad{I: 0, J: i}, power.Pad{I: n - 1, J: i})
	}
	mkPower := func(m power.Method) func(int, obs.Recorder) (string, error) {
		return func(w int, rec obs.Recorder) (string, error) {
			s, err := power.Solve(g, pads, power.SolveOptions{Method: m, Workers: w, Recorder: rec})
			if err != nil {
				return "", err
			}
			if !s.Converged {
				return "", fmt.Errorf("solver stopped: %s (residual %.3e)", s.Stopped, s.Residual)
			}
			return fingerprintFloats(s.V), nil
		}
	}
	return []benchSurface{
		{"power/cg512", mkPower(power.CG)},
		{"power/mg512", mkPower(power.MG)},
		{"power/mgcg512", mkPower(power.MGCG)},
		{"exchange/largeN", func(w int, rec obs.Recorder) (string, error) {
			res, err := exchange.Run(p, dfaA, exchange.Options{
				Seed: 1, Restarts: 4, Workers: w,
				Schedule: benchLargeSchedule, Recorder: rec,
			})
			if err != nil {
				return "", err
			}
			return fingerprintAssignment(res.Assignment), nil
		}},
	}, nil
}

// runBench times the parallelized surfaces at 1, 2, 4 and 8 workers, plus
// the annealer's per-move pricing rate. Every variant computes identical
// results — runBench fails if any worker count's output fingerprint
// diverges from the workers=1 run. size selects the tier: "default" is the
// paper-scale set, "large" appends the 100k-net/513-grid scaling tier.
// With jsonOut it writes BENCH_<date>.json into outDir
// (BENCH_<date>-<tag>.json with a non-empty tag, so a rerun can sit beside
// a same-day baseline).
func runBench(outDir string, jsonOut bool, tag, size string) error {
	rep := &benchReport{
		Date:            time.Now().Format("2006-01-02"),
		GoVersion:       runtime.Version(),
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Size:            size,
		SolverInternals: map[string]*obs.Snapshot{},
	}
	surfaces, err := defaultSurfaces()
	if err != nil {
		return err
	}
	switch size {
	case "", "default":
		rep.Size = "default"
	case "large":
		ls, err := largeSurfaces()
		if err != nil {
			return err
		}
		surfaces = append(surfaces, ls...)
	default:
		return fmt.Errorf("unknown -size %q (want default or large)", size)
	}

	fmt.Printf("== Parallel speedup (%d CPUs, GOMAXPROCS=%d, %s, size=%s) ==\n",
		rep.CPUs, rep.GoMaxProcs, rep.GoVersion, rep.Size)
	var ms0, ms1 runtime.MemStats
	for _, s := range surfaces {
		var base float64
		var baseFP string
		for _, w := range benchWorkerCounts {
			var col *obs.Collector
			var rec obs.Recorder
			if w == 1 {
				col = obs.NewCollector()
				rec = col
			}
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			fp, err := s.run(w, rec)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %v", s.name, w, err)
			}
			secs := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)
			if w == 1 {
				base, baseFP = secs, fp
				if snap := col.Snapshot(); len(snap.Keys()) > 0 {
					rep.SolverInternals[s.name] = &snap
				}
			} else if fp != baseFP {
				return fmt.Errorf("%s: workers=%d output fingerprint %s differs from workers=1 %s (determinism broken)",
					s.name, w, fp, baseFP)
			}
			e := benchEntry{
				Name: s.name, Workers: w, Seconds: secs,
				AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
				BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
			}
			if base > 0 {
				e.SpeedupVs1 = base / secs
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-20s workers=%d: %8.3fs  (%.2fx vs 1, %.0f allocs)\n",
				s.name, w, e.Seconds, e.SpeedupVs1, e.AllocsPerOp)
		}
	}

	// Hot-loop rate: how fast the annealer can price adjacent swaps, and
	// that doing so allocates nothing.
	p := gen.MustBuild(gen.Table1()[2], gen.Options{Seed: 1, Tiers: 4})
	dfaA, err := assign.DFA(p, assign.DFAOptions{})
	if err != nil {
		return err
	}
	pricingMoves := benchPricingMoves
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ps, err := exchange.PricingBench(p, dfaA, exchange.Options{Seed: 1}, pricingMoves)
	if err != nil {
		return fmt.Errorf("move-pricing: %v", err)
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	rep.Entries = append(rep.Entries, benchEntry{
		Name: "exchange/move-pricing", Workers: 1,
		Seconds: secs, SpeedupVs1: 1,
		NsPerMove: ps.NsPerMove, AllocsPerMove: &ps.AllocsPerMove,
		AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
		BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
	})
	fmt.Printf("%-20s %.1f ns/move, %.3f allocs/move (%d moves)\n",
		"exchange/move-pricing", ps.NsPerMove, ps.AllocsPerMove, pricingMoves)

	// Warm-start time-to-target: the cold DFA-seeded full anneal fixes the
	// target Eq 3 cost; the MCMF-warm-started run then anneals tail
	// schedules of doubling length until it matches that cost. Both runs
	// share the DFA order as the Eq 3 baseline, so the costs are directly
	// comparable (see exchange.Options.Initial).
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	cold, err := exchange.Run(p, dfaA, exchange.Options{Seed: 1})
	if err != nil {
		return fmt.Errorf("cold-to-target: %v", err)
	}
	secs = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	target := cold.RestartCosts[0]
	rep.Entries = append(rep.Entries, benchEntry{
		Name: "exchange/to-target/dfa-cold", Workers: 1,
		Seconds: secs, SpeedupVs1: 1,
		Moves: float64(cold.Stats.Proposed), TargetCost: target,
		AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
		BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
	})
	fmt.Printf("%-20s %8.3fs  %8d moves to cost %.6f (full schedule)\n",
		"to-target/dfa-cold", secs, cold.Stats.Proposed, target)

	mcmfA, err := assign.MCMF(p, assign.MCMFOptions{})
	if err != nil {
		return err
	}
	sched := anneal.Schedule{}.WithDefaults()
	warmOpt := exchange.Options{Seed: 1,
		Initial: func(int) *core.Assignment { return mcmfA }}
	for k := 1; ; k *= 2 {
		// A k-temperature tail of the cold schedule: same final
		// temperature and cooling, starting k cooling steps above it.
		t0 := sched.FinalTemp / math.Pow(sched.Cooling, float64(k-1))
		capped := t0 >= sched.InitialTemp
		if capped {
			t0 = sched.InitialTemp
		}
		warmOpt.Schedule = anneal.Schedule{
			InitialTemp: t0, FinalTemp: sched.FinalTemp, Cooling: sched.Cooling}
		runtime.ReadMemStats(&ms0)
		start = time.Now()
		warm, err := exchange.Run(p, dfaA, warmOpt)
		if err != nil {
			return fmt.Errorf("warm-to-target: %v", err)
		}
		secs = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if warm.RestartCosts[0] <= target || capped {
			rep.Entries = append(rep.Entries, benchEntry{
				Name: "exchange/to-target/mcmf-warm", Workers: 1,
				Seconds: secs, SpeedupVs1: 1,
				Moves: float64(warm.Stats.Proposed), TargetCost: target,
				AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
				BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
			})
			fmt.Printf("%-20s %8.3fs  %8d moves to cost %.6f (%d-temp tail)\n",
				"to-target/mcmf-warm", secs, warm.Stats.Proposed, warm.RestartCosts[0], k)
			break
		}
	}

	// Fixed budget versus adaptive portfolio at equal total move budget: the
	// bandit run spends its restart budget across the default arm set; the
	// fixed baseline reruns the single legacy schedule, topped up with extra
	// restarts until it has proposed at least as many moves as the portfolio.
	// The bench fails outright if the adaptive Eq 3 cost is worse — the
	// portfolio's value claim is a gate, not a printout.
	budget := benchPortfolioBudget
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	adaptive, err := exchange.Run(p, dfaA, exchange.Options{
		Seed: 1, Portfolio: portfolio.Default(budget)})
	if err != nil {
		return fmt.Errorf("portfolio-adaptive: %v", err)
	}
	secs = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	var adaptiveMoves int64
	for _, al := range adaptive.Portfolio.Trace {
		adaptiveMoves += int64(al.Proposed)
	}
	adaptiveCost := adaptive.RestartCosts[adaptive.Restart]
	rep.Entries = append(rep.Entries, benchEntry{
		Name: "anneal/portfolio/adaptive", Workers: 1,
		Seconds: secs, SpeedupVs1: 1,
		Moves: float64(adaptiveMoves), TargetCost: adaptiveCost,
		AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
		BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
	})
	winner := adaptive.Portfolio.BestArm
	fmt.Printf("%-20s %8.3fs  %8d moves to cost %.6f (winner arm %d over %d pulls)\n",
		"portfolio/adaptive", secs, adaptiveMoves, adaptiveCost, winner, adaptive.Portfolio.Total)

	runFixed := func(restarts int) (float64, int64, benchEntry, error) {
		col := obs.NewCollector()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := exchange.Run(p, dfaA, exchange.Options{
			Seed: 1, Restarts: restarts, Recorder: col})
		if err != nil {
			return 0, 0, benchEntry{}, err
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		snap := col.Snapshot()
		var moves int64
		for k := 0; k < restarts; k++ {
			moves += snap.Counters[fmt.Sprintf("exchange/restart%d/moves_priced", k)]
		}
		cost := res.RestartCosts[res.Restart]
		return cost, moves, benchEntry{
			Name: "anneal/portfolio/fixed", Workers: 1,
			Seconds: secs, SpeedupVs1: 1,
			Moves: float64(moves), TargetCost: cost,
			AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
			BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
		}, nil
	}
	fixedCost, fixedMoves, fixedEntry, err := runFixed(budget)
	if err != nil {
		return fmt.Errorf("portfolio-fixed: %v", err)
	}
	restarts := budget
	for try := 0; fixedMoves < adaptiveMoves && try < 3; try++ {
		// Top up from the observed per-restart move rate; ceil so one rerun
		// normally lands at or past the portfolio's move count.
		per := fixedMoves / int64(restarts)
		if per <= 0 {
			break
		}
		restarts += int((adaptiveMoves - fixedMoves + per - 1) / per)
		if fixedCost, fixedMoves, fixedEntry, err = runFixed(restarts); err != nil {
			return fmt.Errorf("portfolio-fixed: %v", err)
		}
	}
	rep.Entries = append(rep.Entries, fixedEntry)
	fmt.Printf("%-20s %8.3fs  %8d moves to cost %.6f (%d legacy restarts)\n",
		"portfolio/fixed", fixedEntry.Seconds, fixedMoves, fixedCost, restarts)
	if adaptiveCost > fixedCost {
		return fmt.Errorf("anneal/portfolio: adaptive Eq 3 cost %.6f exceeds the fixed-budget cost %.6f (fixed %d restarts / %d moves vs adaptive %d moves)",
			adaptiveCost, fixedCost, restarts, fixedMoves, adaptiveMoves)
	}

	if jsonOut {
		name := "BENCH_" + rep.Date
		if tag != "" {
			name += "-" + tag
		}
		path := filepath.Join(outDir, name+".json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
