package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed. The experiments print straight to os.Stdout, so the CLI
// tests have to swap the real file descriptor rather than inject a writer.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestNoArgsPrintsUsage(t *testing.T) {
	if got := realMain(nil); got != 2 {
		t.Errorf("realMain() = %d, want 2 (usage)", got)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if got := realMain([]string{"-no-such-flag"}); got != 2 {
		t.Errorf("realMain(-no-such-flag) = %d, want 2", got)
	}
	if got := realMain([]string{"-table", "pancake"}); got != 2 {
		t.Errorf("realMain(-table pancake) = %d, want 2", got)
	}
}

func TestTable1(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = realMain([]string{"-table", "1"}) })
	if code != 0 {
		t.Fatalf("realMain(-table 1) = %d, want 0", code)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("output missing Table 1 header:\n%s", out)
	}
	if !strings.Contains(out, "circuit") {
		t.Errorf("output missing circuit rows:\n%s", out)
	}
}

func TestFig13(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = realMain([]string{"-fig", "13"}) })
	if code != 0 {
		t.Fatalf("realMain(-fig 13) = %d, want 0", code)
	}
	if !strings.Contains(out, "Fig 13") {
		t.Errorf("output missing Fig 13 header:\n%s", out)
	}
}

func TestCompareFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("-compare runs twenty annealers; skipped with -short")
	}
	var code int
	out := captureStdout(t, func() { code = realMain([]string{"-compare"}) })
	if code != 0 {
		t.Fatalf("realMain(-compare) = %d, want 0", code)
	}
	for _, want := range []string{"MCMF", "warm start", "avg cost delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkersFlagAccepted(t *testing.T) {
	// Any worker count must parse and produce the same tables; the cheap
	// Table 1 path proves the flag plumbs through without crashing.
	for _, w := range []string{"1", "3"} {
		if got := realMain([]string{"-workers", w, "-table", "1"}); got != 0 {
			t.Errorf("realMain(-workers %s -table 1) = %d, want 0", w, got)
		}
	}
}

func TestCPUAndMemProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if got := realMain([]string{"-table", "1", "-cpuprofile", cpu, "-memprofile", mem}); got != 0 {
		t.Fatalf("realMain with profiles = %d, want 0", got)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestCPUProfileUnwritable(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "cpu.out")
	if got := realMain([]string{"-table", "1", "-cpuprofile", bad}); got != 1 {
		t.Errorf("realMain with unwritable -cpuprofile = %d, want 1", got)
	}
}

func TestFig15WritesSVGs(t *testing.T) {
	dir := t.TempDir()
	var code int
	out := captureStdout(t, func() { code = realMain([]string{"-fig", "15", "-out", dir}) })
	if code != 0 {
		t.Fatalf("realMain(-fig 15) = %d, want 0", code)
	}
	for _, name := range []string{"random", "ifa", "dfa"} {
		p := filepath.Join(dir, "fig15_"+name+".svg")
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing SVG: %v", err)
		}
	}
	if !strings.Contains(out, "Fig 15") {
		t.Errorf("output missing Fig 15 header:\n%s", out)
	}
}

func TestFig15UnwritableOut(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir")
	if got := realMain([]string{"-fig", "15", "-out", bad}); got != 1 {
		t.Errorf("realMain(-fig 15 -out <unwritable>) = %d, want 1", got)
	}
}
