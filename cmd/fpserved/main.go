// Command fpserved runs the copack planner as a long-lived HTTP/JSON
// service: a bounded job queue over the planning pipeline with a
// content-addressed result cache, so identical requests are answered from
// memory instead of re-annealed.
//
// Usage:
//
//	fpserved -addr 127.0.0.1:8080 -queue 64 -workers 2 -cache 128
//
// Fleet mode joins several nodes into a fault-tolerant cluster that
// shares one logical cache via consistent-hash routing (internal/fleet):
//
//	fpserved -addr 127.0.0.1:8081 -node-id a \
//	    -peers 'b=http://127.0.0.1:8082,c=http://127.0.0.1:8083'
//
// Endpoints (see README "Running as a service" for a curl session):
//
//	GET    /healthz           liveness
//	GET    /metrics           service metrics (deterministic JSON)
//	GET    /queuez            queue depth/capacity (fleet admission)
//	POST   /plan              synchronous plan
//	POST   /jobs              async submit (429 + Retry-After when full)
//	GET    /jobs/{id}         poll status
//	GET    /jobs/{id}/result  fetch the plan
//	DELETE /jobs/{id}         cancel
//	POST   /sweeps            distributed parameter sweep (Table 2/3)
//	GET    /sweeps/{id}/events  SSE progress stream
//	GET    /sweeps/{id}/result  deterministic reduced sweep body
//	DELETE /sweeps/{id}         cancel the sweep
//
// In fleet mode a sweep's units are sharded across the peers by
// consistent-hash placement and the final body is byte-identical to a
// single-node run (see README "Distributed sweeps").
//
// SIGINT/SIGTERM trigger a graceful drain: new work is rejected, running
// plans stop at their next checkpoint and report best-so-far partial
// results, streaming sweeps emit a terminal canceled event, then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"copack/internal/fleet"
	"copack/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// parsePeers turns the -peers flag ("id=url,id=url") into the fleet
// membership map, always including self (whose URL is unused). An entry
// for self is tolerated and ignored so every node of a fleet can share
// one -peers value.
func parsePeers(self, spec string) (map[string]string, error) {
	nodes := map[string]string{self: ""}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, u, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not id=url", ent)
		}
		if err := fleet.ValidNodeID(id); err != nil {
			return nil, err
		}
		if id == self {
			continue
		}
		if u == "" {
			return nil, fmt.Errorf("peer %q has an empty URL", id)
		}
		nodes[id] = strings.TrimSuffix(u, "/")
	}
	return nodes, nil
}

// realMain parses args on a private FlagSet, serves until ctx is
// canceled, then drains. It prints "listening on http://<addr>" once the
// listener is up so scripts (and CI) can scrape the bound port when -addr
// ends in :0.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
		queue     = fs.Int("queue", 64, "async job queue depth; beyond it submissions get 429")
		workers   = fs.Int("workers", 0, "job worker goroutines (0 = one per CPU)")
		syncConc  = fs.Int("sync", 0, "max concurrent synchronous /plan requests (0 = same as -workers)")
		cache     = fs.Int("cache", 128, "content-addressed result cache entries (negative disables)")
		maxBody   = fs.Int64("max-body", 1<<20, "request body size cap in bytes")
		maxBudget = fs.Duration("max-budget", 2*time.Minute,
			"cap on the per-request planning budget (budget_ms)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown waits for in-flight jobs before giving up")
		nodeID = fs.String("node-id", "",
			"this node's fleet ID; enables fleet routing and prefixes job IDs")
		peers = fs.String("peers", "",
			"fleet peers as 'id=http://host:port,...' (requires -node-id)")
		readHeaderTimeout = fs.Duration("read-header-timeout", 5*time.Second,
			"http.Server ReadHeaderTimeout (slowloris protection)")
		readTimeout = fs.Duration("read-timeout", time.Minute,
			"http.Server ReadTimeout: full request read deadline")
		writeTimeout = fs.Duration("write-timeout", 0,
			"http.Server WriteTimeout (0 = max-budget plus a minute; also bounds sweep event streams)")
		sweepSeeds     = fs.Int("sweep-seeds", 64, "max units (seeds) per sweep")
		sweepHeartbeat = fs.Duration("sweep-heartbeat", 15*time.Second,
			"keep-alive interval on idle sweep event streams")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *peers != "" && *nodeID == "" {
		fmt.Fprintf(stderr, "fpserved: -peers requires -node-id\n")
		return 2
	}
	if *nodeID != "" {
		if err := fleet.ValidNodeID(*nodeID); err != nil {
			fmt.Fprintf(stderr, "fpserved: %v\n", err)
			return 2
		}
	}

	svc := service.New(service.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		SyncConcurrency: *syncConc,
		CacheEntries:    *cache,
		MaxBodyBytes:    *maxBody,
		MaxBudget:       *maxBudget,
		NodeID:          *nodeID,
		SweepMaxSeeds:   *sweepSeeds,
		SweepHeartbeat:  *sweepHeartbeat,
	})
	drain := func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		svc.Shutdown(drainCtx)
	}

	handler := svc.Handler()
	if *nodeID != "" {
		nodes, err := parsePeers(*nodeID, *peers)
		if err != nil {
			fmt.Fprintf(stderr, "fpserved: -peers: %v\n", err)
			drain()
			return 2
		}
		rt, err := fleet.New(svc, fleet.Config{
			Self:           *nodeID,
			Nodes:          nodes,
			AttemptTimeout: *maxBudget + 30*time.Second,
			MaxBodyBytes:   *maxBody,
			Recorder:       svc.MetricsRecorder(),
		})
		if err != nil {
			fmt.Fprintf(stderr, "fpserved: %v\n", err)
			drain()
			return 2
		}
		handler = rt.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "fpserved: listen: %v\n", err)
		// The workers are already up; release them before exiting.
		drain()
		return 1
	}
	wt := *writeTimeout
	if wt <= 0 {
		// Long enough for the slowest in-budget plan, including a
		// forwarded one, to finish writing.
		wt = *maxBudget + time.Minute
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      wt,
	}
	fmt.Fprintf(stdout, "fpserved: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "fpserved: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "fpserved: draining\n")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fpserved: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fpserved: http shutdown: %v\n", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "fpserved: serve: %v\n", err)
		code = 1
	}
	fmt.Fprintf(stdout, "fpserved: drained, exiting\n")
	return code
}
