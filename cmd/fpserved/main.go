// Command fpserved runs the copack planner as a long-lived HTTP/JSON
// service: a bounded job queue over the planning pipeline with a
// content-addressed result cache, so identical requests are answered from
// memory instead of re-annealed.
//
// Usage:
//
//	fpserved -addr 127.0.0.1:8080 -queue 64 -workers 2 -cache 128
//
// Endpoints (see README "Running as a service" for a curl session):
//
//	GET    /healthz           liveness
//	GET    /metrics           service metrics (deterministic JSON)
//	POST   /plan              synchronous plan
//	POST   /jobs              async submit (429 + Retry-After when full)
//	GET    /jobs/{id}         poll status
//	GET    /jobs/{id}/result  fetch the plan
//	DELETE /jobs/{id}         cancel
//
// SIGINT/SIGTERM trigger a graceful drain: new work is rejected, running
// plans stop at their next checkpoint and report best-so-far partial
// results, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copack/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain parses args on a private FlagSet, serves until ctx is
// canceled, then drains. It prints "listening on http://<addr>" once the
// listener is up so scripts (and CI) can scrape the bound port when -addr
// ends in :0.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
		queue     = fs.Int("queue", 64, "async job queue depth; beyond it submissions get 429")
		workers   = fs.Int("workers", 0, "job worker goroutines (0 = one per CPU)")
		syncConc  = fs.Int("sync", 0, "max concurrent synchronous /plan requests (0 = same as -workers)")
		cache     = fs.Int("cache", 128, "content-addressed result cache entries (negative disables)")
		maxBody   = fs.Int64("max-body", 1<<20, "request body size cap in bytes")
		maxBudget = fs.Duration("max-budget", 2*time.Minute,
			"cap on the per-request planning budget (budget_ms)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown waits for in-flight jobs before giving up")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	svc := service.New(service.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		SyncConcurrency: *syncConc,
		CacheEntries:    *cache,
		MaxBodyBytes:    *maxBody,
		MaxBudget:       *maxBudget,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "fpserved: listen: %v\n", err)
		// The workers are already up; release them before exiting.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		svc.Shutdown(drainCtx)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(stdout, "fpserved: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "fpserved: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "fpserved: draining\n")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fpserved: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fpserved: http shutdown: %v\n", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "fpserved: serve: %v\n", err)
		code = 1
	}
	fmt.Fprintf(stdout, "fpserved: drained, exiting\n")
	return code
}
