package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"copack"
)

// syncBuffer is a bytes.Buffer safe for the cross-goroutine writes
// realMain does while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

func TestRealMainServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer

	exit := make(chan int, 1)
	go func() {
		exit <- realMain(ctx, []string{"-addr", "127.0.0.1:0", "-queue", "4", "-workers", "1"},
			&stdout, &stderr)
	}()

	// Scrape the bound address from the startup line.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no listening line; stdout=%q stderr=%q", stdout.String(), stderr.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// A full synchronous plan through the real binary wiring.
	tc := copack.TestCircuit{Name: "served", Fingers: 16,
		BallSpace: 1.2, FingerW: 0.1, FingerH: 0.2, FingerSpace: 0.12}
	p, err := copack.BuildCircuit(tc, copack.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"design":  copack.FormatDesign(p),
		"options": map[string]any{"seed": 3, "skip_exchange": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	planBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d: %s", resp.StatusCode, planBody)
	}
	var pr struct {
		Solution string `json:"solution"`
	}
	if err := json.Unmarshal(planBody, &pr); err != nil || !strings.Contains(pr.Solution, "order") {
		t.Fatalf("plan body lacks a solution: %v %s", err, planBody)
	}

	// Signal-equivalent shutdown: cancel the context, expect a clean
	// drain and exit 0.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("realMain did not exit after cancel")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
		t.Errorf("drain messages missing from stdout: %q", out)
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := realMain(context.Background(), []string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "flag provided but not defined") {
		t.Errorf("stderr %q lacks flag error", stderr.String())
	}
}

func TestRealMainBadAddr(t *testing.T) {
	var stdout, stderr syncBuffer
	code := realMain(context.Background(),
		[]string{"-addr", "256.256.256.256:1"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr %q lacks listen error", stderr.String())
	}
}

// TestRealMainHelp keeps the usage text wired to the private FlagSet
// rather than the global one.
func TestRealMainHelp(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := realMain(context.Background(), []string{"-h"}, &stdout, &stderr); code != 2 {
		t.Errorf("-h exit = %d, want 2", code)
	}
	for _, flagName := range []string{"-addr", "-queue", "-cache", "-max-budget", "-drain-timeout",
		"-node-id", "-peers", "-read-header-timeout", "-read-timeout", "-write-timeout"} {
		if !strings.Contains(stderr.String(), flagName) {
			t.Errorf("usage output missing %s", flagName)
		}
	}
}

// startServed boots realMain with args in the background and returns the
// scraped base URL plus a stop function that cancels and waits for exit 0.
func startServed(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- realMain(ctx, append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, args...),
			&stdout, &stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			base := m[1]
			return base, func() {
				cancel()
				select {
				case code := <-exit:
					if code != 0 {
						t.Errorf("exit code %d; stderr=%q", code, stderr.String())
					}
				case <-time.After(15 * time.Second):
					t.Fatal("realMain did not exit after cancel")
				}
			}
		}
		select {
		case code := <-exit:
			cancel()
			t.Fatalf("realMain exited early with %d; stderr=%q", code, stderr.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	t.Fatalf("no listening line; stdout=%q stderr=%q", stdout.String(), stderr.String())
	return "", nil
}

func servedPlanBody(t *testing.T, seed int64) []byte {
	t.Helper()
	tc := copack.TestCircuit{Name: "served", Fingers: 16,
		BallSpace: 1.2, FingerW: 0.1, FingerH: 0.2, FingerSpace: 0.12}
	p, err := copack.BuildCircuit(tc, copack.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"design":  copack.FormatDesign(p),
		"options": map[string]any{"seed": seed, "skip_exchange": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestParsePeers(t *testing.T) {
	cases := []struct {
		name, self, spec string
		want             map[string]string
		wantErr          bool
	}{
		{"empty spec", "a", "", map[string]string{"a": ""}, false},
		{"two peers", "a", "b=http://x:1,c=http://y:2/",
			map[string]string{"a": "", "b": "http://x:1", "c": "http://y:2"}, false},
		{"self entry ignored", "a", "a=http://me:1,b=http://x:1",
			map[string]string{"a": "", "b": "http://x:1"}, false},
		{"spaces tolerated", "a", " b=http://x:1 , c=http://y:2 ",
			map[string]string{"a": "", "b": "http://x:1", "c": "http://y:2"}, false},
		{"missing equals", "a", "bhttp://x:1", nil, true},
		{"empty url", "a", "b=", nil, true},
		{"dash in id", "a", "b-2=http://x:1", nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := parsePeers(c.self, c.spec)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parsePeers(%q) accepted, got %v", c.spec, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parsePeers(%q): %v", c.spec, err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for k, v := range c.want {
				if got[k] != v {
					t.Errorf("node %s = %q, want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestRealMainFleetFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"peers without node-id", []string{"-peers", "b=http://x:1"}, "-peers requires -node-id"},
		{"dash in node-id", []string{"-node-id", "a-1"}, "node ID"},
		{"bad peer entry", []string{"-node-id", "a", "-peers", "nope"}, "id=url"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr syncBuffer
			if code := realMain(context.Background(), c.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit = %d, want 2", code)
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q lacks %q", stderr.String(), c.want)
			}
		})
	}
}

// TestRealMainSingleNodeFleet boots fleet mode with no peers: a one-node
// ring serves everything locally, with prefixed job IDs.
func TestRealMainSingleNodeFleet(t *testing.T) {
	base, stop := startServed(t, "-node-id", "solo")
	defer stop()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(servedPlanBody(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, "solo-j") {
		t.Errorf("job id %q lacks the solo- prefix", sub.ID)
	}
}

// TestRealMainDeadPeerDegradesLocal points a node at a peer that was
// never started: every request — including ones the dead peer owns —
// must still answer 200 by failing over to local computation.
func TestRealMainDeadPeerDegradesLocal(t *testing.T) {
	// 127.0.0.1:1 is reserved and refuses connections immediately.
	base, stop := startServed(t, "-node-id", "a", "-peers", "b=http://127.0.0.1:1")
	defer stop()

	// A handful of seeds guarantees some keys hash to the dead peer b.
	for seed := int64(0); seed < 6; seed++ {
		resp, err := http.Post(base+"/plan", "application/json", bytes.NewReader(servedPlanBody(t, seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Copack-Node"); got != "a" {
			t.Errorf("seed %d answered by %q, want a", seed, got)
		}
	}
}
