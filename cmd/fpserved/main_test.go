package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"copack"
)

// syncBuffer is a bytes.Buffer safe for the cross-goroutine writes
// realMain does while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

func TestRealMainServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer

	exit := make(chan int, 1)
	go func() {
		exit <- realMain(ctx, []string{"-addr", "127.0.0.1:0", "-queue", "4", "-workers", "1"},
			&stdout, &stderr)
	}()

	// Scrape the bound address from the startup line.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no listening line; stdout=%q stderr=%q", stdout.String(), stderr.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// A full synchronous plan through the real binary wiring.
	tc := copack.TestCircuit{Name: "served", Fingers: 16,
		BallSpace: 1.2, FingerW: 0.1, FingerH: 0.2, FingerSpace: 0.12}
	p, err := copack.BuildCircuit(tc, copack.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"design":  copack.FormatDesign(p),
		"options": map[string]any{"seed": 3, "skip_exchange": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	planBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d: %s", resp.StatusCode, planBody)
	}
	var pr struct {
		Solution string `json:"solution"`
	}
	if err := json.Unmarshal(planBody, &pr); err != nil || !strings.Contains(pr.Solution, "order") {
		t.Fatalf("plan body lacks a solution: %v %s", err, planBody)
	}

	// Signal-equivalent shutdown: cancel the context, expect a clean
	// drain and exit 0.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("realMain did not exit after cancel")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
		t.Errorf("drain messages missing from stdout: %q", out)
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := realMain(context.Background(), []string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "flag provided but not defined") {
		t.Errorf("stderr %q lacks flag error", stderr.String())
	}
}

func TestRealMainBadAddr(t *testing.T) {
	var stdout, stderr syncBuffer
	code := realMain(context.Background(),
		[]string{"-addr", "256.256.256.256:1"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr %q lacks listen error", stderr.String())
	}
}

// TestRealMainHelp keeps the usage text wired to the private FlagSet
// rather than the global one.
func TestRealMainHelp(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := realMain(context.Background(), []string{"-h"}, &stdout, &stderr); code != 2 {
		t.Errorf("-h exit = %d, want 2", code)
	}
	for _, flagName := range []string{"-addr", "-queue", "-cache", "-max-budget", "-drain-timeout"} {
		if !strings.Contains(stderr.String(), flagName) {
			t.Errorf("usage output missing %s", flagName)
		}
	}
}
