package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllPlots(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 1, 1, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var routing, ir int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), "_routing.svg"):
			routing++
		case strings.HasSuffix(e.Name(), "_ir.svg"):
			ir++
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v (%d bytes)", e.Name(), err, len(data))
		}
	}
	if routing != 3 || ir != 3 {
		t.Errorf("wrote %d routing and %d IR plots, want 3+3", routing, ir)
	}
}

func TestRunRejectsBadCircuit(t *testing.T) {
	if err := run(0, 1, 1, t.TempDir()); err == nil {
		t.Error("circuit 0 accepted")
	}
	if err := run(6, 1, 1, t.TempDir()); err == nil {
		t.Error("circuit 6 accepted")
	}
}
