// Command fpplot renders the package routing and core IR-drop map of one
// instance under each assignment method, producing a side-by-side set of
// SVGs like the paper's Fig 15.
//
// Usage:
//
//	fpplot -circuit 2 -out plots/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"copack"
)

func main() {
	var (
		circuit = flag.Int("circuit", 2, "Table 1 circuit number 1..5")
		seed    = flag.Int64("seed", 1, "random seed")
		tiers   = flag.Int("tiers", 1, "stacking tier count ψ")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*circuit, *seed, *tiers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fpplot:", err)
		os.Exit(1)
	}
}

func run(circuit int, seed int64, tiers int, out string) error {
	if circuit < 1 || circuit > 5 {
		return fmt.Errorf("circuit %d outside 1..5", circuit)
	}
	tc := copack.Table1Circuits()[circuit-1]
	p, err := copack.BuildCircuit(tc, copack.BuildOptions{Seed: seed, Tiers: tiers})
	if err != nil {
		return err
	}
	for _, alg := range []copack.Algorithm{copack.RandomAssign, copack.IFA, copack.DFA} {
		res, err := copack.Plan(p, copack.Options{Algorithm: alg, SkipExchange: true, Seed: seed})
		if err != nil {
			return err
		}
		r, err := copack.RealizeRouting(p, res.Assignment)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s %v: density %d", tc.Name, alg, res.InitialStats.MaxDensity)
		path := filepath.Join(out, fmt.Sprintf("%s_%v_routing.svg", tc.Name, alg))
		if err := os.WriteFile(path, copack.RoutingSVG(p, r, title), 0o644); err != nil {
			return err
		}
		sol, err := copack.SolveIRDrop(p, res.Assignment, copack.DefaultChipGrid(p))
		if err != nil {
			return err
		}
		irPath := filepath.Join(out, fmt.Sprintf("%s_%v_ir.svg", tc.Name, alg))
		irTitle := fmt.Sprintf("%s %v: %.1f mV", tc.Name, alg, sol.MaxDrop()*1000)
		if err := os.WriteFile(irPath, copack.IRMapSVG(p, res.Assignment, sol, irTitle), 0o644); err != nil {
			return err
		}
		fmt.Printf("%v: density %d, IR %.1f mV -> %s, %s\n",
			alg, res.InitialStats.MaxDensity, sol.MaxDrop()*1000, path, irPath)
	}
	return nil
}
