package copack

import (
	"strings"
	"testing"
)

func TestDesignRoundTripThroughFacade(t *testing.T) {
	p := buildTest(t, 4)
	text := FormatDesign(p)
	got, err := ParseDesign(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if got.Circuit.NumNets() != p.Circuit.NumNets() || got.Tiers != p.Tiers {
		t.Errorf("round trip lost data: %d/%d nets, %d/%d tiers",
			got.Circuit.NumNets(), p.Circuit.NumNets(), got.Tiers, p.Tiers)
	}
	// A plan on the re-read problem must work end to end.
	res, err := Plan(got, Options{SkipExchange: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialStats.MaxDensity <= 0 {
		t.Error("no density on re-read problem")
	}
}

func TestCheckDesignRulesThroughFacade(t *testing.T) {
	p := buildTest(t, 1)
	res, err := Plan(p, Options{SkipExchange: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckDesignRules(p, res.Assignment, DRCRules{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("DFA plan violates default rules: %v", rep.Violations)
	}
	// Impossible rules must flag the spec.
	bad, err := CheckDesignRules(p, res.Assignment, DRCRules{WireWidth: 100, WireSpace: 100})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK() {
		t.Error("impossible rules passed")
	}
}

func TestImproveViasThroughFacade(t *testing.T) {
	p := buildTest(t, 1)
	res, err := Plan(p, Options{Algorithm: RandomAssign, SkipExchange: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plans, st, err := ImproveVias(p, res.Assignment, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxDensity > res.InitialStats.MaxDensity {
		t.Errorf("via improvement worsened density: %d -> %d",
			res.InitialStats.MaxDensity, st.MaxDensity)
	}
	for side, plan := range plans {
		if plan == nil {
			t.Errorf("side %d: nil plan", side)
		}
	}
}

func TestFormatDesignIsParseable(t *testing.T) {
	p := buildTest(t, 1)
	text := FormatDesign(p)
	for _, directive := range []string{"circuit ", "package ", "spec ball", "spec finger", "spec rows", "quadrant bottom", "row "} {
		if !strings.Contains(text, directive) {
			t.Errorf("design text missing %q", directive)
		}
	}
}
