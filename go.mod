module copack

go 1.22
